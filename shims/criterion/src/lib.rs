//! API-compatible subset of `criterion` for an offline build.
//!
//! This is a real measuring harness, not a stub: each benchmark is warmed
//! up, then timed over `sample_size` samples with an adaptive
//! iterations-per-sample so short routines are not dominated by timer
//! overhead. Results print as `name  time: [min median max]`, close enough
//! to criterion's layout for eyeballing and for scripts that grep the
//! median column.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped per measurement; the shim times every
/// routine invocation individually, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumIterations(u64),
}

#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            warm_up: Duration::from_millis(150),
            measurement: Duration::from_millis(900),
        }
    }
}

#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.settings.warm_up = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.into(), settings: self.settings.clone() }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), &self.settings, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, &self.settings, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, settings: &Settings, f: &mut F) {
    let mut b = Bencher { settings: settings.clone(), samples_ns: Vec::new() };
    f(&mut b);
    b.report(name);
}

pub struct Bencher {
    settings: Settings,
    /// Nanoseconds per iteration, one entry per sample.
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, criterion-style: warm-up, then `sample_size`
    /// samples of `iters` calls each, where `iters` is sized so one sample
    /// takes roughly `measurement / sample_size`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up, and estimate the per-call cost.
        let warm_start = Instant::now();
        let mut warm_calls = 0u64;
        while warm_start.elapsed() < self.settings.warm_up || warm_calls < 3 {
            black_box(routine());
            warm_calls += 1;
            if warm_calls >= 1_000_000 {
                break;
            }
        }
        let per_call = warm_start.elapsed().as_secs_f64() / warm_calls as f64;

        let samples = self.settings.sample_size;
        let target_sample = self.settings.measurement.as_secs_f64() / samples as f64;
        let iters = ((target_sample / per_call.max(1e-9)) as u64).clamp(1, 10_000_000);

        self.samples_ns.clear();
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples_ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Times only `routine`; `setup` runs untimed before every call.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Untimed warm-up.
        let warm_start = Instant::now();
        let mut elapsed_in_routine = Duration::ZERO;
        let mut warm_calls = 0u64;
        while warm_start.elapsed() < self.settings.warm_up || warm_calls < 3 {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            elapsed_in_routine += t.elapsed();
            warm_calls += 1;
            if warm_calls >= 100_000 {
                break;
            }
        }
        let per_call = elapsed_in_routine.as_secs_f64() / warm_calls as f64;

        let samples = self.settings.sample_size;
        let target_sample = self.settings.measurement.as_secs_f64() / samples as f64;
        let iters = ((target_sample / per_call.max(1e-9)) as u64).clamp(1, 1_000_000);

        self.samples_ns.clear();
        for _ in 0..samples {
            let mut ns = 0u128;
            for _ in 0..iters {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                ns += t.elapsed().as_nanos();
            }
            self.samples_ns.push(ns as f64 / iters as f64);
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<48} (no samples)");
            return;
        }
        self.samples_ns.sort_by(|a, b| a.total_cmp(b));
        let min = self.samples_ns[0];
        let median = self.samples_ns[self.samples_ns.len() / 2];
        let max = *self.samples_ns.last().unwrap();
        println!(
            "{name:<48} time:   [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = false;
        c.bench_function("spin", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn batched_runs_setup_each_call() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4));
        let mut g = c.benchmark_group("g");
        g.bench_function("sortvec", |b| {
            b.iter_batched(
                || vec![3, 1, 2],
                |mut v| {
                    v.sort_unstable();
                    v
                },
                BatchSize::SmallInput,
            );
        });
        g.finish();
    }
}
