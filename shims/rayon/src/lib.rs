//! API-compatible subset of `rayon` for an offline build: `into_par_iter()`
//! on integer ranges with `map`/`sum`/`fold`/`reduce`.
//!
//! Unlike rayon's lazy work-stealing iterators, this shim is eager: each
//! combinator materializes its input, splits it into one contiguous chunk
//! per available core, and runs the chunks on scoped `std::thread`s. That
//! preserves rayon's semantics for the workspace's usage (order-preserving
//! `map`, chunk-local `fold` accumulators combined by `reduce`) while
//! remaining genuinely parallel.

use std::num::NonZeroUsize;

pub mod prelude {
    pub use crate::IntoParallelIterator;
}

fn worker_count() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(4)
}

/// An eagerly materialized "parallel iterator".
pub struct ParIter<T> {
    items: Vec<T>,
}

pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
        impl IntoParallelIterator for std::ops::RangeInclusive<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_range_par_iter!(i32, i64, u32, u64, usize);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Splits `items` into at most `worker_count()` contiguous chunks and maps
/// each chunk on its own scoped thread, preserving order.
fn par_chunks<T: Send, R: Send>(
    items: Vec<T>,
    run: impl Fn(Vec<T>) -> Vec<R> + Sync,
) -> Vec<R> {
    let n = items.len();
    let workers = worker_count().min(n.max(1));
    if workers <= 1 || n < 2 {
        return run(items);
    }
    let chunk_len = n.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk_len).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let run = &run;
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || run(c)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon-shim worker panicked"))
            .collect()
    })
}

impl<T: Send> ParIter<T> {
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync + Send,
    {
        let f = &f;
        ParIter { items: par_chunks(self.items, |c| c.into_iter().map(f).collect()) }
    }

    /// One accumulator per chunk, as in rayon: the result is a parallel
    /// iterator over the per-chunk fold results.
    pub fn fold<A, ID, F>(self, identity: ID, fold: F) -> ParIter<A>
    where
        A: Send,
        ID: Fn() -> A + Sync + Send,
        F: Fn(A, T) -> A + Sync + Send,
    {
        let identity = &identity;
        let fold = &fold;
        ParIter {
            items: par_chunks(self.items, |c| {
                vec![c.into_iter().fold(identity(), fold)]
            }),
        }
    }

    pub fn reduce<ID, F>(self, identity: ID, reduce: F) -> T
    where
        ID: Fn() -> T,
        F: Fn(T, T) -> T,
    {
        self.items.into_iter().fold(identity(), reduce)
    }

    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T>,
    {
        self.items.into_iter().sum()
    }

    pub fn collect<C>(self) -> C
    where
        C: FromIterator<T>,
    {
        self.items.into_iter().collect()
    }

    pub fn count(self) -> usize {
        self.items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_sum_matches_serial() {
        let par: f64 = (1..=100i64).into_par_iter().map(|i| i as f64).sum();
        assert_eq!(par, 5050.0);
    }

    #[test]
    fn fold_reduce_vector_accumulators() {
        let n = 257usize;
        let acc = (0..n)
            .into_par_iter()
            .fold(|| vec![0.0f64; 3], |mut a, i| {
                a[i % 3] += i as f64;
                a
            })
            .reduce(
                || vec![0.0f64; 3],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(&b) {
                        *x += y;
                    }
                    a
                },
            );
        let mut want = vec![0.0f64; 3];
        for i in 0..n {
            want[i % 3] += i as f64;
        }
        assert_eq!(acc, want);
    }

    #[test]
    fn empty_range() {
        let s: f64 = (0..0i64).into_par_iter().map(|i| i as f64).sum();
        assert_eq!(s, 0.0);
    }
}
