//! API-compatible subset of `parking_lot`, implemented over `std::sync`.
//!
//! The build environment is fully offline (no crates.io access), so the
//! workspace vendors exactly the surface it uses: [`Mutex`] with
//! parking_lot's non-poisoning `lock()`, [`Condvar::wait`] taking
//! `&mut MutexGuard`, and [`RwLock`]. Poison errors are swallowed the way
//! parking_lot's no-poison design implies: the guard is recovered and the
//! data stays accessible.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified. std's `wait` consumes the guard and returns a
    /// new one; parking_lot mutates in place, so the inner guard is moved
    /// out and written back. `std::sync::Condvar::wait` only errs on
    /// poisoning, which is recovered, so no unwind can strand the slot.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        unsafe {
            let inner = std::ptr::read(&guard.0);
            let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
            std::ptr::write(&mut guard.0, inner);
        }
    }

    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn rwlock_shared_then_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
