//! API-compatible subset of `proptest` for an offline build.
//!
//! Implements exactly the strategy surface this workspace's tests use:
//! integer/float range strategies, `Just`, tuples, `prop_map`,
//! `prop_recursive`, `prop_oneof!`, `collection::vec`, `num::f64`
//! class strategies, simple character-class regex strategies for `&str`,
//! and the `proptest!` test macro with `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, deliberately accepted:
//! * no shrinking — a failing case panics with its inputs unshrunk;
//! * deterministic seeding per test name, so failures always reproduce;
//! * `BoxedStrategy` is `Rc`-backed (tests are single-threaded).


pub mod test_runner {
    /// Per-test configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 128 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// SplitMix64: tiny, fast, and plenty for test-case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
        }

        /// Deterministic per-test stream: FNV-1a of the test name.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `0..n` (n > 0).
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform in `[0, 1)` with 53-bit resolution.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// A generator of values. Unlike real proptest there is no value tree:
    /// `new_value` draws a fresh unshrinkable value.
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Builds a bounded-depth recursive strategy by unrolling
        /// `depth` levels eagerly; each level is a coin flip between a
        /// leaf and the recursive construction, which keeps expected tree
        /// sizes modest. `_desired_size`/`_expected_branch` are accepted
        /// for signature compatibility.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(cur.clone()).boxed();
                cur = Union::new(vec![leaf.clone(), deeper]).boxed();
            }
            cur
        }
    }

    trait DynStrategy<T> {
        fn dyn_value(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_value(&self, rng: &mut TestRng) -> S::Value {
            self.new_value(rng)
        }
    }

    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.dyn_value(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len());
            self.arms[i].new_value(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(lo < hi, "empty range strategy");
                    let span = (hi - lo) as u128;
                    let r = (rng.next_u64() as u128) % span;
                    (lo + r as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as i128;
                    let hi = *self.end() as i128 + 1;
                    assert!(lo < hi, "empty range strategy");
                    let span = (hi - lo) as u128;
                    let r = (rng.next_u64() as u128) % span;
                    (lo + r as i128) as $t
                }
            }
        )*};
    }

    int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.new_value(rng), self.1.new_value(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.new_value(rng), self.1.new_value(rng), self.2.new_value(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.new_value(rng),
                self.1.new_value(rng),
                self.2.new_value(rng),
                self.3.new_value(rng),
            )
        }
    }

    /// `"[A-Za-z][A-Za-z0-9_]{0,12}"`-style strategies: sequences of
    /// character classes / literals with `{m,n}`, `{n}`, `?`, `+`, `*`
    /// quantifiers. Anything fancier panics loudly.
    impl Strategy for &str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            super::regex_lite::generate(self, rng)
        }
    }
}

/// Tiny generator for the regex subset used as string strategies.
mod regex_lite {
    use super::test_runner::TestRng;

    pub fn generate(pat: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pat.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let (set, next) = parse_atom(pat, &chars, i);
            let (min, max, next) = parse_quant(pat, &chars, next);
            let reps = min + rng.below(max - min + 1);
            for _ in 0..reps {
                out.push(set[rng.below(set.len())]);
            }
            i = next;
        }
        out
    }

    fn parse_atom(pat: &str, chars: &[char], i: usize) -> (Vec<char>, usize) {
        match chars[i] {
            '[' => {
                let mut set = Vec::new();
                let mut j = i + 1;
                assert!(
                    chars.get(j) != Some(&'^'),
                    "unsupported regex (negated class) in strategy: {pat}"
                );
                while j < chars.len() && chars[j] != ']' {
                    if j + 2 < chars.len() && chars[j + 1] == '-' && chars[j + 2] != ']' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad class range in strategy: {pat}");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(j < chars.len(), "unterminated class in strategy: {pat}");
                (set, j + 1)
            }
            '\\' => {
                assert!(i + 1 < chars.len(), "trailing backslash in strategy: {pat}");
                (vec![chars[i + 1]], i + 2)
            }
            '(' | ')' | '|' | '.' | '^' | '$' => {
                panic!("unsupported regex construct {:?} in strategy: {pat}", chars[i])
            }
            c => (vec![c], i + 1),
        }
    }

    fn parse_quant(pat: &str, chars: &[char], i: usize) -> (usize, usize, usize) {
        match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated quantifier in strategy: {pat}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let (min, max) = match body.split_once(',') {
                    Some((a, b)) => (
                        a.parse().expect("bad quantifier"),
                        b.parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.parse().expect("bad quantifier");
                        (n, n)
                    }
                };
                (min, max, close + 1)
            }
            Some('?') => (0, 1, i + 1),
            Some('+') => (1, 8, i + 1),
            Some('*') => (0, 8, i + 1),
            _ => (1, 1, i),
        }
    }
}

pub mod num {
    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        enum Kind {
            /// Finite and strictly positive (normals and subnormals).
            Positive,
            /// Normal finite values of either sign.
            Normal,
            /// Any bit pattern: infinities and NaNs included.
            Any,
        }

        #[derive(Debug, Clone, Copy)]
        pub struct FloatStrategy(Kind);

        pub const POSITIVE: FloatStrategy = FloatStrategy(Kind::Positive);
        pub const NORMAL: FloatStrategy = FloatStrategy(Kind::Normal);
        pub const ANY: FloatStrategy = FloatStrategy(Kind::Any);

        impl Strategy for FloatStrategy {
            type Value = f64;
            fn new_value(&self, rng: &mut TestRng) -> f64 {
                match self.0 {
                    Kind::Any => f64::from_bits(rng.next_u64()),
                    Kind::Positive => loop {
                        let v = f64::from_bits(rng.next_u64() & !(1u64 << 63));
                        if v.is_finite() && v > 0.0 {
                            return v;
                        }
                    },
                    Kind::Normal => {
                        let sign = rng.next_u64() & (1 << 63);
                        let exp = 1 + rng.below(2046) as u64; // biased exponent, never 0/0x7ff
                        let mant = rng.next_u64() & ((1u64 << 52) - 1);
                        f64::from_bits(sign | (exp << 52) | mant)
                    }
                }
            }
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `vec(element, min..max)`: length drawn from the half-open range.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.start + rng.below(self.len.end - self.len.start);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    /// Mirrors real proptest's `prelude::prop` crate alias, so paths like
    /// `prop::num::f64::POSITIVE` and `prop::collection::vec` work.
    pub use crate as prop;
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The `proptest!` block: each contained `fn name(arg in strategy, ...)`
/// becomes a zero-argument test that draws `cases` random inputs from a
/// deterministic per-test RNG stream and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = Strategy::new_value(&(-4i8..5), &mut rng);
            assert!((-4..5).contains(&v));
            let w = Strategy::new_value(&(0i64..=i64::MAX), &mut rng);
            assert!(w >= 0);
            let f = Strategy::new_value(&(-1.5f64..2.5), &mut rng);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn regex_class_quantifier() {
        let mut rng = TestRng::for_test("regex");
        for _ in 0..200 {
            let s = Strategy::new_value(&"[A-Za-z][A-Za-z0-9_]{0,12}", &mut rng);
            assert!((1..=13).contains(&s.len()), "{s}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
    }

    #[test]
    fn float_classes() {
        let mut rng = TestRng::for_test("floats");
        for _ in 0..500 {
            let p = Strategy::new_value(&crate::num::f64::POSITIVE, &mut rng);
            assert!(p.is_finite() && p > 0.0);
            let n = Strategy::new_value(&crate::num::f64::NORMAL, &mut rng);
            assert!(n.is_normal());
        }
    }

    #[test]
    fn oneof_and_recursive_terminate() {
        #[derive(Debug, Clone)]
        enum E {
            Leaf(i8),
            Add(Box<E>, Box<E>),
        }
        fn depth(e: &E) -> usize {
            match e {
                E::Leaf(v) => {
                    assert!((-4..5).contains(v));
                    1
                }
                E::Add(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (-4i8..5).prop_map(E::Leaf).prop_recursive(3, 24, 2, |inner| {
            (inner.clone(), inner)
                .prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::for_test("rec");
        for _ in 0..200 {
            let e = Strategy::new_value(&strat, &mut rng);
            assert!(depth(&e) <= 4, "{e:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: bindings, tuples, and vec strategies.
        #[test]
        fn macro_generates(v in 1usize..6, (a, b) in (0i64..10, 0i64..10),
                           xs in prop::collection::vec(0u32..9, 1..5)) {
            prop_assert!((1..6).contains(&v));
            prop_assert!(a < 10 && b < 10);
            prop_assert!(!xs.is_empty() && xs.len() < 5);
            prop_assert_ne!(v, 0);
            prop_assert_eq!(v, v);
        }
    }
}
